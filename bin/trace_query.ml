(* Offline provenance queries: answer "what happened to this packet /
   this flow?" from a run's JSONL trace, and validate that a pcap capture,
   a trace and a report all describe the same run. *)

module Json = Obs.Json
module Trace = Obs.Trace
module Pcap = Obs.Pcap
module Packet = Dcpkt.Packet
module Flow_key = Dcpkt.Flow_key
module Samples = Dcstats.Samples

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg -> failf "%s" msg

let load_trace path =
  let events = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' (read_file path)
  |> List.iter (fun line ->
         incr lineno;
         if String.trim line <> "" then
           match Json.of_string line with
           | Error e -> failf "%s:%d: %s" path !lineno e
           | Ok json -> (
             match Trace.event_of_json json with
             | Error e -> failf "%s:%d: %s" path !lineno e
             | Ok ev -> events := ev :: !events));
  List.rev !events

let us ns = float_of_int ns /. 1000.0

(* A packet's lifecycle ends at exactly one of these (modulo the
   Policer_drop + Vswitch_drop pair the egress chain emits together). *)
let is_terminal = function
  | Trace.Delivered _ | Trace.Drop _ | Trace.Vswitch_drop _ | Trace.Policer_drop _ -> true
  | Trace.Impaired { action = Trace.Imp_lost | Trace.Imp_corrupted; _ } -> true
  | _ -> false

let describe_terminal = function
  | Trace.Delivered { node; _ } -> Printf.sprintf "delivered at %s" node
  | Trace.Drop { node; reason; _ } ->
    Printf.sprintf "dropped at %s (%s)" node
      (match reason with
      | Trace.No_route -> "no route"
      | Trace.Buffer_full -> "buffer full"
      | Trace.Over_threshold -> "over threshold"
      | Trace.Wred -> "wred"
      | Trace.No_endpoint -> "no endpoint")
  | Trace.Vswitch_drop { node; egress; _ } ->
    Printf.sprintf "dropped by the %s vswitch (%s)" node (if egress then "egress" else "ingress")
  | Trace.Policer_drop { window; _ } ->
    Printf.sprintf "policed (beyond the %d-byte enforced window)" window
  | Trace.Impaired { link; action = Trace.Imp_lost; _ } -> Printf.sprintf "lost on %s" link
  | Trace.Impaired { link; action = Trace.Imp_corrupted; _ } ->
    Printf.sprintf "corrupted on %s" link
  | _ -> "in flight when the trace ended"

let print_timeline evs =
  Format.printf "  %12s %12s  %s@." "t (us)" "+hop (us)" "event";
  ignore
    (List.fold_left
       (fun prev (now, ev) ->
         (match prev with
         | None -> Format.printf "  %12.3f %12s  %a@." (us now) "" Trace.pp_event ev
         | Some p ->
           Format.printf "  %12.3f %12.3f  %a@." (us now) (us (now - p)) Trace.pp_event ev);
         Some now)
       None evs)

let explain_pkt events n =
  let evs = List.filter (fun (_, ev) -> Trace.pkt_of_event ev = Some n) events in
  if evs = [] then failf "no events for packet %d in this trace" n;
  (* Provenance header: how the packet came to exist. *)
  (match
     List.find_opt (function _, Trace.Created { pkt; _ } -> pkt = n | _ -> false) events
   with
  | Some (t, Trace.Created { node; flow; size; kind; _ }) ->
    Format.printf "packet %d: %s, %d bytes on wire, flow %a, created at %s (t=%.3f us)@." n
      kind size Flow_key.pp flow node (us t)
  | _ -> (
    match
      List.find_opt
        (function
          | _, Trace.Impaired { action = Trace.Imp_duplicated { copy }; _ } -> copy = n
          | _ -> false)
        events
    with
    | Some (t, Trace.Impaired { link; pkt; _ }) ->
      Format.printf "packet %d: duplicate of packet %d, made by %s (t=%.3f us)@." n pkt link
        (us t)
    | _ -> Format.printf "packet %d: (no creation event in this trace)@." n));
  print_timeline evs;
  let first, _ = List.hd evs in
  let last_t, last_ev = List.nth evs (List.length evs - 1) in
  let terminal = List.filter (fun (_, ev) -> is_terminal ev) evs in
  (match List.rev terminal with
  | (t, ev) :: _ ->
    Format.printf "lifecycle: %s after %.3f us (%d events)@." (describe_terminal ev)
      (us (t - first)) (List.length evs)
  | [] ->
    Format.printf "lifecycle: in flight when the trace ended (last seen %a at t=%.3f us)@."
      Trace.pp_event last_ev (us last_t))

let explain_flow events spec =
  let flow =
    match Trace.flow_of_spec spec with Ok f -> f | Error e -> failf "%s" e
  in
  let keep = Trace.flow_selector ~flows:[ flow ] in
  let evs = List.filter (fun (now, ev) -> keep now ev) events in
  if evs = [] then failf "no events for flow %s in this trace" spec;
  Format.printf "flow %a: %d events@." Flow_key.pp flow (List.length evs);
  print_timeline evs;
  let count p = List.length (List.filter (fun (_, ev) -> p ev) evs) in
  Format.printf
    "summary: %d packets created, %d delivered, %d rwnd rewrites, %d alpha updates, %d \
     policer drops, %d rto inferences@."
    (count (function Trace.Created _ -> true | _ -> false))
    (count (function Trace.Delivered _ -> true | _ -> false))
    (count (function Trace.Rwnd_rewrite _ -> true | _ -> false))
    (count (function Trace.Alpha_update _ -> true | _ -> false))
    (count (function Trace.Policer_drop _ -> true | _ -> false))
    (count (function Trace.Rto_fire _ -> true | _ -> false))

let summary events =
  (match (events, List.rev events) with
  | (t0, _) :: _, (t1, _) :: _ ->
    Format.printf "%d events spanning %.3f us (t=%.3f..%.3f us)@." (List.length events)
      (us (t1 - t0)) (us t0) (us t1)
  | _ -> Format.printf "empty trace@.");
  let kinds = Hashtbl.create 16 in
  let impairs = Hashtbl.create 8 in
  let pkts = Hashtbl.create 1024 in
  let flows = Hashtbl.create 64 in
  List.iter
    (fun (_, ev) ->
      let k = Trace.kind_of_event ev in
      Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k));
      (match ev with
      | Trace.Impaired { action; _ } ->
        let a = Trace.action_label action in
        Hashtbl.replace impairs a (1 + Option.value ~default:0 (Hashtbl.find_opt impairs a))
      | _ -> ());
      Option.iter (fun p -> Hashtbl.replace pkts p ()) (Trace.pkt_of_event ev);
      Option.iter (fun f -> Hashtbl.replace flows f ()) (Trace.flow_of_event ev))
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, v) ->
         Format.printf "  %-14s %8d@." k v;
         (* Impairments are one aggregate kind in the tag vocabulary;
            break them out per action right under the aggregate row. *)
         if k = "impaired" then
           Hashtbl.fold (fun a n acc -> (a, n) :: acc) impairs []
           |> List.sort (fun (a, _) (b, _) -> String.compare a b)
           |> List.iter (fun (a, n) -> Format.printf "    %-12s %8d@." ("/" ^ a) n));
  Format.printf "%d distinct packets, %d distinct flows@." (Hashtbl.length pkts)
    (Hashtbl.length flows)

(* ------------------------------------------------------------------ *)
(* int: break a flow's latency down hop-by-hop from its INT samples.   *)

type hop_agg = {
  mutable first_depth : int;  (* position along the path, for ordering *)
  sojourn : Samples.t;
  mutable sum_sojourn : int;
  mutable max_qbytes : int;
  mutable svc_sum : float;
}

let int_view events spec =
  let flow = match Trace.flow_of_spec spec with Ok f -> f | Error e -> failf "%s" e in
  let fwd k = Flow_key.equal k flow in
  let rev k = Flow_key.equal k (Flow_key.reverse flow) in
  (* The ACKs of a flow carry their own stamps under the reversed
     4-tuple, so aggregate the two directions separately. *)
  let aggs : (bool * string, hop_agg) Hashtbl.t = Hashtbl.create 16 in
  let agg_of is_fwd label =
    match Hashtbl.find_opt aggs (is_fwd, label) with
    | Some a -> a
    | None ->
      let a =
        {
          first_depth = max_int;
          sojourn = Samples.create ();
          sum_sojourn = 0;
          max_qbytes = 0;
          svc_sum = 0.0;
        }
      in
      Hashtbl.replace aggs (is_fwd, label) a;
      a
  in
  let created = Hashtbl.create 1024 in (* fwd pkt id -> creation time *)
  let delivered = Hashtbl.create 1024 in
  let pkt_sojourn = Hashtbl.create 1024 in (* fwd pkt id -> summed hop sojourn *)
  let stripped = ref 0 and exceeded = ref 0 and hop_samples = ref 0 in
  List.iter
    (fun (now, ev) ->
      match ev with
      | Trace.Created { flow = f; pkt; _ } when fwd f -> Hashtbl.replace created pkt now
      | Trace.Delivered { pkt; _ } -> Hashtbl.replace delivered pkt now
      | Trace.Int_hop { flow = f; pkt; depth; hop; port; ingress; egress; qbytes; svc_bps }
        when fwd f || rev f ->
        let is_fwd = fwd f in
        let label = Printf.sprintf "%s:%d" hop port in
        let a = agg_of is_fwd label in
        let sojourn = egress - ingress in
        a.first_depth <- min a.first_depth depth;
        Samples.add a.sojourn (float_of_int sojourn);
        a.sum_sojourn <- a.sum_sojourn + sojourn;
        a.max_qbytes <- Stdlib.max a.max_qbytes qbytes;
        a.svc_sum <- a.svc_sum +. float_of_int svc_bps;
        incr hop_samples;
        if is_fwd then
          Hashtbl.replace pkt_sojourn pkt
            (sojourn + Option.value ~default:0 (Hashtbl.find_opt pkt_sojourn pkt))
      | Trace.Int_strip { flow = f; exceeded = e; _ } when fwd f || rev f ->
        incr stripped;
        if e then incr exceeded
      | _ -> ())
    events;
  if !hop_samples = 0 then
    failf "no INT samples for flow %s in this trace (was the run INT-enabled?)" spec;
  Format.printf "flow %a: %d stamped packets, %d hop samples%s@." Flow_key.pp flow !stripped
    !hop_samples
    (if !exceeded > 0 then
       Printf.sprintf " (%d packets ran out of option space)" !exceeded
     else "");
  let direction is_fwd title =
    let hops =
      Hashtbl.fold (fun (d, label) a acc -> if d = is_fwd then (label, a) :: acc else acc) aggs []
      |> List.sort (fun (la, a) (lb, b) ->
             match compare a.first_depth b.first_depth with
             | 0 -> String.compare la lb
             | c -> c)
    in
    if hops <> [] then begin
      let total = List.fold_left (fun acc (_, a) -> acc + a.sum_sojourn) 0 hops in
      Format.printf "%s (per-hop queueing, path order):@." title;
      Format.printf "  %-16s %6s %9s %9s %9s %6s %9s %8s@." "hop" "pkts" "p50 us" "p99 us"
        "max us" "share" "max q B" "svc Gbps";
      List.iter
        (fun (label, a) ->
          let n = Samples.count a.sojourn in
          Format.printf "  %-16s %6d %9.3f %9.3f %9.3f %5.1f%% %9d %8.2f@." label n
            (Samples.percentile a.sojourn 50.0 /. 1000.0)
            (Samples.percentile a.sojourn 99.0 /. 1000.0)
            (Samples.max a.sojourn /. 1000.0)
            (if total = 0 then 0.0 else 100.0 *. float_of_int a.sum_sojourn /. float_of_int total)
            a.max_qbytes
            (a.svc_sum /. float_of_int n /. 1e9))
        hops;
      (* Name the culprit: the hop where queueing built up. *)
      (match
         List.sort (fun (_, a) (_, b) -> compare b.sum_sojourn a.sum_sojourn) hops
       with
      | (label, a) :: _ :: _ when a.sum_sojourn > 0 ->
        Format.printf "  queueing builds up at %s (%.1f%% of %s queueing, p99 %.3f us)@." label
          (100.0 *. float_of_int a.sum_sojourn /. float_of_int total)
          title
          (Samples.percentile a.sojourn 99.0 /. 1000.0)
      | _ -> ())
    end;
    List.fold_left (fun acc (_, a) -> acc + a.sum_sojourn) 0 hops
  in
  let fwd_total = direction true "data path" in
  let _ack_total = direction false "ack path" in
  (* End-to-end attribution: creation -> delivery against the summed hop
     sojourns of the same packets. *)
  let e2e = Samples.create () and path = Samples.create () in
  let sum_e2e = ref 0 and sum_path = ref 0 in
  Hashtbl.iter
    (fun pkt t0 ->
      match Hashtbl.find_opt delivered pkt with
      | None -> ()
      | Some t1 ->
        let s = Option.value ~default:0 (Hashtbl.find_opt pkt_sojourn pkt) in
        Samples.add e2e (float_of_int (t1 - t0));
        Samples.add path (float_of_int s);
        sum_e2e := !sum_e2e + (t1 - t0);
        sum_path := !sum_path + s)
    created;
  if Samples.count e2e > 0 then begin
    Format.printf
      "end-to-end (created -> delivered, %d packets): mean %.3f us, p99 %.3f us@."
      (Samples.count e2e) (Samples.mean e2e /. 1000.0)
      (Samples.percentile e2e 99.0 /. 1000.0)
    ;
    Format.printf
      "  stamped-hop queueing: mean %.3f us, p99 %.3f us — %.1f%% of end-to-end latency@."
      (Samples.mean path /. 1000.0)
      (Samples.percentile path 99.0 /. 1000.0)
      (if !sum_e2e = 0 then 0.0 else 100.0 *. float_of_int !sum_path /. float_of_int !sum_e2e);
    Format.printf
      "  (the rest is serialization, propagation and NIC/vswitch time outside the stamped \
       queues)@."
  end;
  Format.printf "total stamped sojourn: %.3f us on the data path@."
    (float_of_int fwd_total /. 1000.0)

(* ------------------------------------------------------------------ *)
(* why: a flow's causal stall timeline from its attribution events.    *)

let why_view events spec =
  let flow = match Trace.flow_of_spec spec with Ok f -> f | Error e -> failf "%s" e in
  let transitions =
    List.filter_map
      (fun (now, ev) ->
        match ev with
        | Trace.Attrib_transition { flow = f; from_state; to_state; spent }
          when Flow_key.equal f flow ->
          Some (now, from_state, to_state, spent)
        | _ -> None)
      events
  in
  if transitions = [] then
    failf
      "no attribution events for flow %s in this trace (was the run started with --attrib?)"
      spec;
  let completions =
    List.length (List.filter (fun (_, _, target, _) -> target = "complete") transitions)
  in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (_, from_state, _, spent) ->
      Hashtbl.replace totals from_state
        (spent + Option.value ~default:0 (Hashtbl.find_opt totals from_state)))
    transitions;
  let fct = List.fold_left (fun acc (_, _, _, spent) -> acc + spent) 0 transitions in
  Format.printf "flow %a: %d state transitions%s@." Flow_key.pp flow (List.length transitions)
    (if completions > 0 then
       Printf.sprintf ", completed %d message batch(es), FCT %.3f us" completions (us fct)
     else Printf.sprintf ", still live after %.3f us accounted" (us fct));
  (* Each transition closes the interval its [spent] covers: the flow sat
     in [from_state] from (t - spent) to t. *)
  Format.printf "stall timeline:@.";
  Format.printf "  %12s %12s  %s@." "t (us)" "dur (us)" "state";
  List.iter
    (fun (now, from_state, to_state, spent) ->
      Format.printf "  %12.3f %12.3f  %s%s@."
        (us (now - spent))
        (us spent) from_state
        (if to_state = "complete" then "  [message batch complete]" else ""))
    transitions;
  (* The causal verdict: where the flow's lifetime actually went.  The
     durations are exact (they sum to the FCT by construction), so the
     shares are too. *)
  Format.printf "attribution (share of accounted time):@.";
  Hashtbl.fold (fun state ns acc -> (state, ns) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (state, ns) ->
         Format.printf "  %-24s %5.1f%%  %12.3f us@." state
           (if fct = 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int fct)
           (us ns));
  (* Split "in_flight" further when the trace carries INT stamps: which
     switch port the waiting actually happened at. *)
  let hops = Hashtbl.create 8 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Int_hop { flow = f; hop; port; ingress; egress; _ } when Flow_key.equal f flow ->
        let label = Printf.sprintf "%s:%d" hop port in
        let sum, n = Option.value ~default:(0, 0) (Hashtbl.find_opt hops label) in
        Hashtbl.replace hops label (sum + (egress - ingress), n + 1)
      | _ -> ())
    events;
  if Hashtbl.length hops > 0 then begin
    let total = Hashtbl.fold (fun _ (sum, _) acc -> acc + sum) hops 0 in
    Format.printf "in_flight decomposition (per-hop queueing, from INT):@.";
    Hashtbl.fold (fun label agg acc -> (label, agg) :: acc) hops []
    |> List.sort (fun (_, (a, _)) (_, (b, _)) -> compare b a)
    |> List.iter (fun (label, (sum, n)) ->
           Format.printf "  %-16s %5.1f%%  %12.3f us over %d packets@." label
             (if total = 0 then 0.0 else 100.0 *. float_of_int sum /. float_of_int total)
             (us sum) n)
  end
  else
    Format.printf
      "(no INT samples for this flow; rerun with --int to split in_flight per hop)@."

(* ------------------------------------------------------------------ *)
(* validate: do the capture, the trace and the report agree?           *)

let check name ok detail =
  Format.printf "  %-38s %s@." name (if ok then "ok" else "FAIL — " ^ detail);
  ok

(* Every packet-keyed event must belong to a packet whose origin the
   trace records (a Created event, or birth as an impairment duplicate),
   and nothing may happen to a packet after its terminal event. *)
let check_lifecycles events =
  let by_pkt = Hashtbl.create 4096 in
  List.iter
    (fun (now, ev) ->
      match Trace.pkt_of_event ev with
      | None -> ()
      | Some p ->
        Hashtbl.replace by_pkt p
          ((now, ev) :: Option.value ~default:[] (Hashtbl.find_opt by_pkt p)))
    events;
  let origins = Hashtbl.create 4096 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Trace.Created { pkt; _ } -> Hashtbl.replace origins pkt ()
      | Trace.Impaired { action = Trace.Imp_duplicated { copy }; _ } ->
        Hashtbl.replace origins copy ()
      | _ -> ())
    events;
  let orphans = ref [] and zombies = ref [] and complete = ref 0 in
  Hashtbl.iter
    (fun p evs ->
      let evs = List.rev evs in
      if not (Hashtbl.mem origins p) then orphans := p :: !orphans;
      let rec scan seen_terminal = function
        | [] -> ()
        | (_, ev) :: rest ->
          if seen_terminal && not (is_terminal ev) then zombies := p :: !zombies
          else scan (seen_terminal || is_terminal ev) rest
      in
      scan false evs;
      if List.exists (fun (_, ev) -> is_terminal ev) evs then incr complete)
    by_pkt;
  let sample l = String.concat ", " (List.map string_of_int (List.filteri (fun i _ -> i < 5) l)) in
  let ok1 =
    check "every packet has a recorded origin" (!orphans = [])
      (Printf.sprintf "%d packet(s) with events but no origin (e.g. %s)" (List.length !orphans)
         (sample !orphans))
  in
  let ok2 =
    check "no events after a terminal event" (!zombies = [])
      (Printf.sprintf "%d packet(s) live on after dying (e.g. %s)" (List.length !zombies)
         (sample !zombies))
  in
  Format.printf "  (%d packets traced, %d reached a terminal event, %d in flight at end)@."
    (Hashtbl.length by_pkt) !complete
    (Hashtbl.length by_pkt - !complete);
  ok1 && ok2

let check_pcap_roundtrip frames =
  let bad = ref 0 and first_err = ref "" in
  List.iteri
    (fun i (f : Pcap.frame) ->
      match Packet.of_wire f.Pcap.data with
      | Error e ->
        incr bad;
        if !first_err = "" then first_err := Printf.sprintf "frame %d: %s" i e
      | Ok pkt ->
        if Packet.to_wire pkt <> f.Pcap.data then begin
          incr bad;
          if !first_err = "" then
            first_err := Printf.sprintf "frame %d: re-serialization differs" i
        end
        else if f.Pcap.orig_len <> String.length f.Pcap.data + pkt.Packet.payload then begin
          incr bad;
          if !first_err = "" then
            first_err :=
              Printf.sprintf "frame %d: orig_len %d <> header %d + payload %d" i
                f.Pcap.orig_len (String.length f.Pcap.data) pkt.Packet.payload
        end)
    frames;
  check
    (Printf.sprintf "all %d frames parse and round-trip" (List.length frames))
    (!bad = 0)
    (Printf.sprintf "%d frame(s) failed; %s" !bad !first_err)

(* The capture taps are: every transmit-queue dequeue, both directions of
   every VM edge, and every frame an impaired link carries forward.  Each
   tap has an exact witness — Dequeue events, the vswitch egress counter
   plus Delivered/No_endpoint events, and the impair counters — so for an
   unfiltered trace the frame count must match to the packet. *)
let load_metrics = function
  | None -> ([], [])
  | Some path -> (
    match Json.of_string (read_file path) with
    | Error e -> failf "%s: %s" path e
    | Ok json ->
      let section name =
        match Option.bind (Json.member "metrics" json) (Json.member name) with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) -> match v with Json.Int i -> Some (k, i) | _ -> None)
            fields
        | _ -> failf "%s: no metrics.%s object" path name
      in
      (section "counters", section "gauges"))

let check_counts frames events report_path counters =
  let counter name = Option.value ~default:0 (List.assoc_opt name counters) in
  let count p = List.length (List.filter (fun (_, ev) -> p ev) events) in
  let dequeues = count (function Trace.Dequeue _ -> true | _ -> false) in
  let delivered = count (function Trace.Delivered _ -> true | _ -> false) in
  let no_endpoint =
    count (function Trace.Drop { reason = Trace.No_endpoint; _ } -> true | _ -> false)
  in
  match report_path with
  | None ->
    (* Without the metrics snapshot only the tap inventory from the trace
       is available; the VM egress tap has no trace witness, so settle for
       a lower bound. *)
    check "frame count covers traced taps"
      (List.length frames >= dequeues + delivered + no_endpoint)
      (Printf.sprintf "%d frames < %d dequeues + %d delivered + %d no-endpoint"
         (List.length frames) dequeues delivered no_endpoint)
  | Some _ ->
    let vm_egress = counter "vswitch.egress_packets" in
    let impair_forwarded =
      (* Link names may themselves contain dots ("impair.host1.up.lost"),
         so the field is the segment after the last dot. *)
      List.fold_left
        (fun acc (k, v) ->
          if not (String.length k > 7 && String.sub k 0 7 = "impair.") then acc
          else
            match String.rindex_opt k '.' with
            | None -> acc
            | Some i -> (
              match String.sub k (i + 1) (String.length k - i - 1) with
              | "offered" | "duplicated" -> acc + v
              | "lost" | "corrupted" -> acc - v
              | _ -> acc))
        0 counters
    in
    let expected = dequeues + delivered + no_endpoint + vm_egress + impair_forwarded in
    check "frame count matches metrics + trace"
      (List.length frames = expected)
      (Printf.sprintf
         "%d frames <> %d (= %d dequeues + %d delivered + %d no-endpoint + %d vm egress + %d \
          impair-forwarded)"
         (List.length frames) expected dequeues delivered no_endpoint vm_egress
         impair_forwarded)

(* INT stamps must agree with the queue's own story: every Int_hop's
   ingress/egress must coincide with the packet's Enqueue/Dequeue pair at
   that node and port, and (with a report) the per-port sojourn totals
   implied by the stamps must fit under the independent
   [txq.<node>.port<i>.sojourn_*] instruments — the cross-check behind
   the per-hop attribution guarantee. *)
let check_int events (counters, gauges) ~have_report =
  let int_hops =
    List.filter_map
      (fun (_, ev) ->
        match ev with
        | Trace.Int_hop { pkt; hop; port; ingress; egress; _ } ->
          Some (pkt, hop, port, ingress, egress)
        | _ -> None)
      events
  in
  if int_hops = [] then true (* nothing stamped; stay quiet *)
  else begin
    let enq = Hashtbl.create 4096 and deq = Hashtbl.create 4096 in
    List.iter
      (fun (now, ev) ->
        match ev with
        | Trace.Enqueue { node; port; pkt; _ } -> Hashtbl.replace enq (pkt, node, port) now
        | Trace.Dequeue { node; port; pkt; _ } -> Hashtbl.replace deq (pkt, node, port) now
        | _ -> ())
      events;
    let bad = ref 0 and first = ref "" in
    List.iter
      (fun (pkt, hop, port, ingress, egress) ->
        let key = (pkt, hop, port) in
        let ok =
          Hashtbl.find_opt enq key = Some ingress && Hashtbl.find_opt deq key = Some egress
        in
        if not ok then begin
          incr bad;
          if !first = "" then first := Printf.sprintf "pkt %d at %s:%d" pkt hop port
        end)
      int_hops;
    let ok1 =
      check
        (Printf.sprintf "INT stamps match enqueue/dequeue (%d hops)" (List.length int_hops))
        (!bad = 0)
        (Printf.sprintf "%d stamp(s) disagree with queue events (e.g. %s)" !bad !first)
    in
    let ok2 =
      if not have_report then true
      else begin
        (* Per (node, port): INT is a per-packet subset of what the txq
           sojourn instruments saw, so max <= gauge and sum/count <= the
           counters. *)
        let ports = Hashtbl.create 16 in
        List.iter
          (fun (_, hop, port, ingress, egress) ->
            let max_s, sum_s, n =
              Option.value ~default:(0, 0, 0) (Hashtbl.find_opt ports (hop, port))
            in
            let s = egress - ingress in
            Hashtbl.replace ports (hop, port) (Stdlib.max max_s s, sum_s + s, n + 1))
          int_hops;
        let metric assoc name = List.assoc_opt name assoc in
        let bad = ref 0 and first = ref "" in
        Hashtbl.iter
          (fun (hop, port) (max_s, sum_s, n) ->
            let scope = Printf.sprintf "txq.%s.port%d" hop port in
            let fail fmt = Printf.ksprintf (fun s -> incr bad; if !first = "" then first := s) fmt in
            match
              ( metric gauges (scope ^ ".sojourn_ns"),
                metric counters (scope ^ ".sojourn_total_ns"),
                metric counters (scope ^ ".sojourn_samples") )
            with
            | Some g, Some total, Some samples ->
              if max_s > g then fail "%s: INT max %d > gauge %d" scope max_s g
              else if sum_s > total then fail "%s: INT sum %d > total %d" scope sum_s total
              else if n > samples then fail "%s: %d INT samples > %d recorded" scope n samples
            | _ -> fail "%s: sojourn instruments missing from report" scope)
          ports;
        check
          (Printf.sprintf "INT sojourns fit txq instruments (%d ports)" (Hashtbl.length ports))
          (!bad = 0)
          (Printf.sprintf "%d port(s) out of bounds (e.g. %s)" !bad !first)
      end
    in
    ok1 && ok2
  end

let validate ~pcap ~trace ~report =
  let events = load_trace trace in
  Format.printf "validating %s against %s%s@." pcap trace
    (match report with Some r -> " and " ^ r | None -> "");
  let frames =
    match Pcap.read (read_file pcap) with Ok f -> f | Error e -> failf "%s: %s" pcap e
  in
  let metrics = load_metrics report in
  (* Run every check even after a failure, so one run reports them all. *)
  let c1 = check (Printf.sprintf "trace parses (%d events)" (List.length events)) true "" in
  let c2 = check_pcap_roundtrip frames in
  let c3 = check_lifecycles events in
  let c4 = check_counts frames events report (fst metrics) in
  let c5 = check_int events metrics ~have_report:(report <> None) in
  let ok = c1 && c2 && c3 && c4 && c5 in
  if not ok then failf "validation failed";
  Format.printf "all checks passed@."

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

open Cmdliner

let trace_pos =
  let doc = "JSONL trace file (written by acdc_expt --trace)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let wrap f = try `Ok (f ()) with Fail msg -> `Error (false, msg)

let explain_cmd =
  let pkt_arg =
    let doc = "Explain packet $(docv): its full lifecycle timeline with hop latencies." in
    Arg.(value & opt (some int) None & info [ "pkt" ] ~docv:"ID" ~doc)
  in
  let flow_arg =
    let doc =
      "Explain flow $(docv) (format SRC_IP:SRC_PORT-DST_IP:DST_PORT): every event of every \
       packet of the flow, in either direction."
    in
    Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let run pkt flow trace =
    wrap (fun () ->
        let events = load_trace trace in
        match (pkt, flow) with
        | Some n, None -> explain_pkt events n
        | None, Some spec -> explain_flow events spec
        | Some _, Some _ -> failf "--pkt and --flow are mutually exclusive"
        | None, None -> failf "one of --pkt or --flow is required")
  in
  let doc = "reconstruct a packet's or flow's provenance timeline from a trace" in
  Cmd.v (Cmd.info "explain" ~doc) Term.(ret (const run $ pkt_arg $ flow_arg $ trace_pos))

let summary_cmd =
  let run trace = wrap (fun () -> summary (load_trace trace)) in
  let doc = "per-kind event counts and the trace's time span" in
  Cmd.v (Cmd.info "summary" ~doc) Term.(ret (const run $ trace_pos))

let int_cmd =
  let flow_arg =
    let doc =
      "Flow $(docv) (format SRC_IP:SRC_PORT-DST_IP:DST_PORT) whose INT samples to break down \
       hop by hop; the reverse direction (the flow's ACKs) is reported separately."
    in
    Arg.(required & opt (some string) None & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let run spec trace = wrap (fun () -> int_view (load_trace trace) spec) in
  let doc = "break a flow's latency down hop-by-hop from its in-band telemetry" in
  Cmd.v (Cmd.info "int" ~doc) Term.(ret (const run $ flow_arg $ trace_pos))

let why_cmd =
  let flow_arg =
    let doc =
      "Flow $(docv) (format SRC_IP:SRC_PORT-DST_IP:DST_PORT, data direction) whose stall \
       timeline to reconstruct from its 'attrib' events (runs started with --attrib)."
    in
    Arg.(required & opt (some string) None & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let run spec trace = wrap (fun () -> why_view (load_trace trace) spec) in
  let doc =
    "explain why a flow was slow: its exact stall-state timeline (handshake, app/cwnd/rwnd \
     limited, RTO recovery, in flight) plus per-hop queueing attribution when INT was on"
  in
  Cmd.v (Cmd.info "why" ~doc) Term.(ret (const run $ flow_arg $ trace_pos))

let validate_cmd =
  let pcap_arg =
    let doc = "Capture file (pcap or pcapng) to validate." in
    Arg.(required & opt (some file) None & info [ "pcap" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc = "Unfiltered JSONL trace of the same run." in
    Arg.(required & opt (some file) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let report_arg =
    let doc = "Run report of the same run; enables the exact frame-count cross-check." in
    Arg.(value & opt (some file) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let run pcap trace report = wrap (fun () -> validate ~pcap ~trace ~report) in
  let doc = "check that a capture, a trace and a report describe the same run" in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(ret (const run $ pcap_arg $ trace_arg $ report_arg))

let cmd =
  let doc = "query and validate AC/DC run artifacts (traces and captures)" in
  Cmd.group (Cmd.info "trace_query" ~doc)
    [ explain_cmd; summary_cmd; int_cmd; why_cmd; validate_cmd ]

let () = exit (Cmd.eval cmd)
